(** Method A — the baseline: the n-ary tree index replicated on every
    node, each query answered by an individual tree traversal that takes a
    cache miss per uncached level (Section 3, Section A.2.1).

    As in the paper's Figure 3 protocol, the run simulates one node
    processing the whole query stream and divides the time by the cluster
    size: the dispatcher and load balancing are charged nothing, which
    "gives the benefit of the doubt" to Method A. *)

val run :
  Workload.Scenario.t -> keys:int array -> queries:int array -> Run_result.t
(** Build the replicated index over [keys], run all [queries] through one
    simulated node, validate every result against the reference
    implementation, and normalize by [n_nodes]. *)
