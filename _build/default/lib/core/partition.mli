(** Range partitioning of the sorted key set across slave nodes, and the
    master's delimiter table (Section 3.2, Figure 2).

    The sorted key array is cut into [n] contiguous slices of near-equal
    size; slice [s] starts at rank [base s].  The delimiter table holds
    the first key of slices [1..n-1]; the partition responsible for a
    query [q] is the number of delimiters [<= q], so queries below every
    delimiter go to slice 0 and queries at or above the last delimiter go
    to slice [n-1]. *)

type t

val make : keys:int array -> parts:int -> t
(** [make ~keys ~parts] partitions the strictly-increasing [keys] into
    [parts >= 1] slices.  Requires [Array.length keys >= parts]. *)

val parts : t -> int
val delimiters : t -> int array
(** [parts - 1] keys, strictly increasing. *)

val base : t -> int -> int
(** Global rank of the first key of a slice (what a slave adds to its
    local rank). *)

val slice : t -> int -> int array
(** Copy of the keys of one slice. *)

val slice_len : t -> int -> int

val owner : t -> int -> int
(** [owner t q] is the slice whose range contains [q] (host-side
    reference; the simulated master uses its delimiter
    {!Index.Sorted_array}). *)

val max_slice_bytes : t -> word_bytes:int -> int
(** Footprint of the largest slice — what must fit in a slave's cache. *)
