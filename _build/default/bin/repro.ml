(* Command-line driver that regenerates every table and figure of the
   paper, plus the ablation studies.  `repro --help` lists subcommands. *)

open Cmdliner

let kib n = n * 1024

(* ------------------------------------------------------------------ *)
(* Shared options *)

let scale_arg =
  let doc =
    "Workload scale: 'paper' (2^23 queries, as published), 'scaled' (2^21 \
     queries, same per-key results, default) or 'ci' (tiny smoke test)."
  in
  Arg.(value & opt string "scaled" & info [ "scale" ] ~docv:"SCALE" ~doc)

let queries_arg =
  let doc = "Override the number of search keys (queries)." in
  Arg.(value & opt (some int) None & info [ "queries" ] ~docv:"N" ~doc)

let keys_arg =
  let doc = "Override the number of indexed keys." in
  Arg.(value & opt (some int) None & info [ "keys" ] ~docv:"N" ~doc)

let nodes_arg =
  let doc = "Override the cluster size (including the master)." in
  Arg.(value & opt (some int) None & info [ "nodes" ] ~docv:"N" ~doc)

let batch_arg =
  let doc = "Override the batch/message size in KB." in
  Arg.(value & opt (some int) None & info [ "batch" ] ~docv:"KB" ~doc)

let masters_arg =
  let doc = "Number of master nodes for Method C (paper: 1)." in
  Arg.(value & opt (some int) None & info [ "masters" ] ~docv:"N" ~doc)

let network_arg =
  let doc = "Network profile: myrinet | gige | fast-ethernet." in
  Arg.(value & opt string "myrinet" & info [ "network" ] ~docv:"NET" ~doc)

let seed_arg =
  let doc = "Workload seed." in
  Arg.(value & opt (some int) None & info [ "seed" ] ~docv:"SEED" ~doc)

let csv_arg =
  let doc = "Also write raw results to $(docv)." in
  Arg.(value & opt (some string) None & info [ "csv" ] ~docv:"FILE" ~doc)

let scenario_term =
  let build scale queries keys nodes masters batch network seed =
    let base =
      match String.lowercase_ascii scale with
      | "paper" -> Ok Workload.Scenario.paper
      | "scaled" -> Ok Workload.Scenario.scaled
      | "ci" -> Ok Workload.Scenario.ci
      | other -> Error (`Msg (Printf.sprintf "unknown scale %S" other))
    in
    let net =
      match String.lowercase_ascii network with
      | "myrinet" -> Ok Netsim.Profile.myrinet
      | "gige" | "gigabit" | "gigabit-ethernet" -> Ok Netsim.Profile.gigabit_ethernet
      | "fast-ethernet" | "ethernet" -> Ok Netsim.Profile.fast_ethernet
      | other -> Error (`Msg (Printf.sprintf "unknown network %S" other))
    in
    match (base, net) with
    | Error e, _ | _, Error e -> Error e
    | Ok sc, Ok net ->
        let sc = { sc with Workload.Scenario.net } in
        let sc =
          match queries with
          | Some q -> { sc with Workload.Scenario.n_queries = q }
          | None -> sc
        in
        let sc =
          match keys with
          | Some k -> { sc with Workload.Scenario.n_keys = k }
          | None -> sc
        in
        let sc =
          match nodes with
          | Some n -> { sc with Workload.Scenario.n_nodes = n }
          | None -> sc
        in
        let sc =
          match masters with
          | Some m -> { sc with Workload.Scenario.n_masters = m }
          | None -> sc
        in
        let sc =
          match batch with
          | Some b -> Workload.Scenario.with_batch sc (kib b)
          | None -> sc
        in
        let sc =
          match seed with
          | Some s -> { sc with Workload.Scenario.seed = s }
          | None -> sc
        in
        Ok sc
  in
  Term.(
    term_result ~usage:true
      (const build $ scale_arg $ queries_arg $ keys_arg $ nodes_arg
     $ masters_arg $ batch_arg $ network_arg $ seed_arg))

let say fmt = Format.printf (fmt ^^ "@.")

(* ------------------------------------------------------------------ *)
(* Subcommands *)

let run_table1 sc =
  say "%a@\n" Workload.Scenario.pp sc;
  say "Table 1: the index structure setup@\n@\n%s"
    (Report.Table.render (Dispatch.Experiment.table1 ~scenario:sc ()))

let run_table2 sc =
  say "Table 2: parameters measured on the simulated cluster@\n@\n%s"
    (Report.Table.render (Dispatch.Experiment.table2 ~scenario:sc ()))

let run_table3 sc =
  say "%a@\n" Workload.Scenario.pp sc;
  let rows = Dispatch.Experiment.table3 ~scenario:sc () in
  print_string (Dispatch.Experiment.render_table3 ~scenario:sc rows)

let run_fig3 sc csv methods =
  say "%a@\n" Workload.Scenario.pp sc;
  let methods =
    match methods with
    | [] -> Dispatch.Methods.all
    | ms -> ms
  in
  let rows = Dispatch.Experiment.fig3 ~scenario:sc ~methods () in
  print_string (Dispatch.Experiment.render_fig3 ~scenario:sc rows);
  match csv with
  | None -> ()
  | Some path ->
      let flat =
        List.concat_map
          (fun { Dispatch.Experiment.results; _ } ->
            List.map Dispatch.Run_result.to_cells results)
          rows
      in
      Report.Csv.save ~path ~header:Dispatch.Run_result.header flat;
      say "wrote %s" path

let run_fig4 sc years =
  say "%a@\n" Workload.Scenario.pp sc;
  print_string (Dispatch.Experiment.render_fig4 (Dispatch.Experiment.fig4 ~scenario:sc ~years ()))

let run_ablation sc which =
  let table =
    match String.lowercase_ascii which with
    | "batch-overhead" -> Ok (Dispatch.Ablation.batch_overhead ~scenario:sc ())
    | "network" -> Ok (Dispatch.Ablation.network ~scenario:sc ())
    | "skew" -> Ok (Dispatch.Ablation.skew ~scenario:sc ())
    | "masters" -> Ok (Dispatch.Ablation.masters ~scenario:sc ())
    | "linesize" | "line-size" -> Ok (Dispatch.Ablation.line_size ~scenario:sc ())
    | "slave-structure" -> Ok (Dispatch.Ablation.slave_structure ~scenario:sc ())
    | "structures" -> Ok (Dispatch.Ablation.structures ~scenario:sc ())
    | "hierarchy" -> Ok (Dispatch.Ablation.hierarchy ~scenario:sc ())
    | other -> Error other
  in
  match table with
  | Ok t ->
      say "%a@\n" Workload.Scenario.pp sc;
      say "ablation %s:@\n@\n%s" which (Report.Table.render t);
      `Ok ()
  | Error other ->
      `Error
        ( false,
          Printf.sprintf
            "unknown ablation %S (batch-overhead | network | skew | masters \
             | linesize | slave-structure | structures | hierarchy)"
            other )

let run_timeline sc methods =
  let method_id =
    match methods with m :: _ -> m | [] -> Dispatch.Methods.C3
  in
  say "%a@\n" Workload.Scenario.pp sc;
  print_string (Dispatch.Experiment.timeline ~scenario:sc ~method_id ())

let run_all sc =
  run_table1 sc;
  run_table2 sc;
  run_fig3 sc None [];
  run_table3 sc;
  run_fig4 sc 5

(* ------------------------------------------------------------------ *)
(* Command wiring *)

let cmd_of name doc f =
  Cmd.v (Cmd.info name ~doc) Term.(const f $ scenario_term)

let methods_arg =
  let doc = "Comma-separated methods to run (A,B,C-1,C-2,C-3)." in
  let parse s =
    let parts = String.split_on_char ',' s in
    let rec go acc = function
      | [] -> Ok (List.rev acc)
      | p :: rest -> (
          match Dispatch.Methods.of_string (String.trim p) with
          | Some m -> go (m :: acc) rest
          | None -> Error (`Msg (Printf.sprintf "unknown method %S" p)))
    in
    go [] parts
  in
  let print fmt ms =
    Format.pp_print_string fmt
      (String.concat "," (List.map Dispatch.Methods.to_string ms))
  in
  Arg.(
    value
    & opt (conv (parse, print)) []
    & info [ "methods" ] ~docv:"METHODS" ~doc)

let table1_cmd = cmd_of "table1" "Reproduce Table 1 (index structure setup)." run_table1
let table2_cmd = cmd_of "table2" "Reproduce Table 2 (measured machine parameters)." run_table2
let table3_cmd = cmd_of "table3" "Reproduce Table 3 (model vs simulation)." run_table3

let fig3_cmd =
  Cmd.v
    (Cmd.info "fig3" ~doc:"Reproduce Figure 3 (search time vs batch size).")
    Term.(const run_fig3 $ scenario_term $ csv_arg $ methods_arg)

let fig4_cmd =
  let years =
    Arg.(value & opt int 5 & info [ "years" ] ~docv:"YEARS" ~doc:"Horizon in years.")
  in
  Cmd.v
    (Cmd.info "fig4" ~doc:"Reproduce Figure 4 (future technology trends).")
    Term.(const run_fig4 $ scenario_term $ years)

let ablation_cmd =
  let which =
    Arg.(
      required
      & pos 0 (some string) None
      & info [] ~docv:"NAME"
          ~doc:
            "One of: batch-overhead, network, skew, masters, linesize, \
             slave-structure, structures, hierarchy.")
  in
  Cmd.v
    (Cmd.info "ablation" ~doc:"Run an ablation study.")
    Term.(ret (const run_ablation $ scenario_term $ which))

let timeline_cmd =
  Cmd.v
    (Cmd.info "timeline"
       ~doc:"Gantt chart of per-node busy time for one method (default C-3).")
    Term.(const run_timeline $ scenario_term $ methods_arg)

let all_cmd = cmd_of "all" "Run every table and figure in sequence." run_all

let () =
  let info =
    Cmd.info "repro" ~version:"1.0.0"
      ~doc:
        "Reproduction of 'Fast Query Processing by Distributing an Index \
         over CPU Caches' (Ma & Cooperman, CLUSTER 2005) on a simulated \
         cluster."
  in
  let group =
    Cmd.group info
      [ table1_cmd; table2_cmd; table3_cmd; fig3_cmd; fig4_cmd; ablation_cmd;
        timeline_cmd; all_cmd ]
  in
  exit (Cmd.eval group)
