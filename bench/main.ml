(* Benchmark harness: one Bechamel test per paper artefact (Tables 1-3,
   Figures 3-4) plus microbenchmarks of the index structures and the
   simulation substrates.  After the timing pass it regenerates and prints
   the paper-shaped rows/series at bench scale, so the output doubles as a
   quick-look reproduction of the evaluation section.

   Flags are Cmdliner terms shared with `repro` (see {!Cli}), so unknown
   flags are errors and `bench --help` documents everything.  Two
   baseline-gate modes short-circuit the benchmarks entirely:

     bench --save-baseline FILE    capture the gated sweep's simulated
                                   costs (promote an intentional change)
     bench --check-baseline FILE   re-run the sweep and diff bit-for-bit
                                   against the committed file (exit 1 on
                                   any drift) — the @bench-baseline alias

   Scale note: Bechamel re-runs each staged function many times, so the
   artefact tests use a reduced query volume (2^15-2^17).  Per-key results
   are what the paper's figures compare and are stable under this scaling;
   run `repro fig3 --scale paper` for full-scale numbers. *)

open Bechamel
open Toolkit

(* ------------------------------------------------------------------ *)
(* Shared fixtures (built once, outside the timed regions; lazy so the
   baseline-gate modes never pay for them) *)

let bench_scenario =
  Workload.Scenario.paper
  |> Workload.Scenario.with_name "bench"
  |> Workload.Scenario.with_queries (1 lsl 15)

let bench_spec =
  Dispatch.Experiment.Spec.default
  |> Dispatch.Experiment.Spec.with_scenario bench_scenario

(* Open-loop serving fixture: a short horizon keeps one serving run in
   the same cost envelope as the other artefact benchmarks. *)
let serve_scenario =
  bench_scenario
  |> Workload.Scenario.with_name "bench-serve"
  |> Workload.Scenario.with_duration 4e6
  |> Workload.Scenario.with_clients 16

let serve_spec =
  Dispatch.Experiment.Spec.default
  |> Dispatch.Experiment.Spec.with_scenario serve_scenario
  |> Dispatch.Experiment.Spec.with_methods [ Dispatch.Methods.B; Dispatch.Methods.C3 ]

let workload = lazy (Dispatch.Runner.workload bench_scenario)

let fresh_machine () =
  Machine.create (Simcore.Engine.create ()) ~name:"bench"
    Cachesim.Mem_params.pentium3

(* ------------------------------------------------------------------ *)
(* Microbenchmarks: index structures (1024 simulated lookups each) *)

let micro_tests ~jobs =
  let keys, queries = Lazy.force workload in
  let lookup_queries = Array.sub queries 0 1024 in
  let test_sorted_array =
    let m = fresh_machine () in
    let sa = Index.Sorted_array.build m keys in
    Test.make ~name:"sorted-array/1k-lookups"
      (Staged.stage @@ fun () ->
       Array.iter (fun q -> ignore (Index.Sorted_array.search sa q)) lookup_queries)
  in
  let test_nary =
    let m = fresh_machine () in
    let t = Index.Nary_tree.build m keys in
    Test.make ~name:"nary-tree/1k-lookups"
      (Staged.stage @@ fun () ->
       Array.iter (fun q -> ignore (Index.Nary_tree.search t q)) lookup_queries)
  in
  let test_csb =
    let m = fresh_machine () in
    let t = Index.Csb_tree.build m keys in
    Test.make ~name:"csb-tree/1k-lookups"
      (Staged.stage @@ fun () ->
       Array.iter (fun q -> ignore (Index.Csb_tree.search t q)) lookup_queries)
  in
  let test_buffered =
    let m = fresh_machine () in
    let t = Index.Nary_tree.build m keys in
    let b = Index.Buffered.create ~max_batch:1024 t in
    let region = Machine.alloc m 1024 in
    Test.make ~name:"buffered/1k-batch"
      (Staged.stage @@ fun () ->
       Machine.poke_array m region lookup_queries;
       Index.Buffered.process_batch b ~queries:region ~results:region ~n:1024)
  in
  let test_eytzinger =
    let m = fresh_machine () in
    let t = Index.Eytzinger.build m keys in
    Test.make ~name:"eytzinger/1k-lookups"
      (Staged.stage @@ fun () ->
       Array.iter (fun q -> ignore (Index.Eytzinger.search t q)) lookup_queries)
  in
  let test_cache_access =
    let h = Cachesim.Hierarchy.create Cachesim.Mem_params.pentium3 in
    let g = Prng.Splitmix.create 3 in
    let addrs = Array.init 4096 (fun _ -> Prng.Splitmix.int g (1 lsl 24)) in
    Test.make ~name:"cachesim/4k-accesses"
      (Staged.stage @@ fun () ->
       Array.iter (fun a -> ignore (Cachesim.Hierarchy.access h ~addr:a ~write:false)) addrs)
  in
  let test_cache_access_scoped =
    (* Same access stream as cachesim/4k-accesses but with a cache
       microscope attached: the delta is the classifier's overhead
       (stack-distance tracking + 3C + set counters per access). *)
    let scope = Obs.Cachescope.create () in
    let h = Cachesim.Hierarchy.create Cachesim.Mem_params.pentium3 in
    ignore (Cachesim.Hierarchy.attach_scope h scope ~node_name:"bench");
    let g = Prng.Splitmix.create 3 in
    let addrs = Array.init 4096 (fun _ -> Prng.Splitmix.int g (1 lsl 24)) in
    Test.make ~name:"cachesim/4k-accesses+scope"
      (Staged.stage @@ fun () ->
       Array.iter (fun a -> ignore (Cachesim.Hierarchy.access h ~addr:a ~write:false)) addrs)
  in
  let test_engine =
    Test.make ~name:"simcore/1k-process-switches"
      (Staged.stage @@ fun () ->
       let eng = Simcore.Engine.create () in
       Simcore.Engine.spawn eng (fun () ->
           for _ = 1 to 1000 do
             Simcore.Engine.delay eng 1.0
           done);
       Simcore.Engine.run eng)
  in
  let test_mpi_collectives =
    Test.make ~name:"mpi/barrier+reduce-8-ranks"
      (Staged.stage @@ fun () ->
       let eng = Simcore.Engine.create () in
       let comm = Netsim.Mpi.create eng Netsim.Profile.myrinet ~ranks:8 in
       for r = 0 to 7 do
         Simcore.Engine.spawn eng (fun () ->
             Netsim.Mpi.barrier comm ~rank:r ~fill:0;
             ignore (Netsim.Mpi.reduce comm ~rank:r ~root:0 ~size:8 ~op:( + ) r))
       done;
       Simcore.Engine.run eng)
  in
  let test_pool_overhead =
    (* Cost of fanning 64 trivial jobs over the pool: the executor's fixed
       overhead, to be compared against a multi-ms simulation job. *)
    Test.make ~name:(Printf.sprintf "exec/pool-64-jobs-%dw" jobs)
      (Staged.stage @@ fun () ->
       ignore
         (Exec.Sweep.map ~jobs ~f:(fun i -> i * i)
            (List.init 64 (fun i -> i))))
  in
  let test_pool_chunked =
    (* Same fan-out with interleaved chunks of 8: one pool task per
       chunk instead of per cell — the dispatch-overhead regime chunking
       exists for. *)
    Test.make ~name:(Printf.sprintf "exec/pool-64-jobs-chunk8-%dw" jobs)
      (Staged.stage @@ fun () ->
       ignore
         (Exec.Sweep.map ~jobs ~chunk:8 ~f:(fun i -> i * i)
            (List.init 64 (fun i -> i))))
  in
  Test.make_grouped ~name:"micro"
    [ test_sorted_array; test_nary; test_csb; test_buffered;
      test_eytzinger; test_cache_access; test_cache_access_scoped;
      test_engine; test_mpi_collectives; test_pool_overhead;
      test_pool_chunked ]

(* ------------------------------------------------------------------ *)
(* One test per paper artefact *)

let artefact_tests () =
  let keys, queries = Lazy.force workload in
  let test_table1 =
    Test.make ~name:"table1/index-setup"
      (Staged.stage @@ fun () ->
       ignore (Dispatch.Experiment.table1 bench_spec))
  in
  let test_table2 =
    Test.make ~name:"table2/calibration"
      (Staged.stage @@ fun () ->
       ignore
         (Dispatch.Calibrate.measure Cachesim.Mem_params.pentium3
            Netsim.Profile.myrinet))
  in
  let fig3_point method_id =
    let sc = Workload.Scenario.with_batch bench_scenario (128 * 1024) in
    Test.make ~name:(Printf.sprintf "fig3/method-%s" (Dispatch.Methods.to_string method_id))
      (Staged.stage @@ fun () ->
       let r = Dispatch.Runner.run sc ~method_id ~keys ~queries in
       assert (r.Dispatch.Run_result.validation_errors = 0))
  in
  let test_fig3 =
    Test.make_grouped ~name:"fig3"
      (List.map fig3_point Dispatch.Methods.all)
  in
  let test_hier_point =
    let sc =
      Workload.Scenario.with_batch
        (Workload.Scenario.with_nodes 13 bench_scenario)
        (128 * 1024)
    in
    Test.make ~name:"extension/method-C3-hier"
      (Staged.stage @@ fun () ->
       let r =
         Dispatch.Method_c_hier.run sc ~routers:2 ~variant:Dispatch.Methods.C3
           ~keys ~queries ()
       in
       assert (r.Dispatch.Run_result.validation_errors = 0))
  in
  let test_table3 =
    Test.make ~name:"table3/model-predictions"
      (Staged.stage @@ fun () ->
       let sc = bench_scenario in
       let shape = Dispatch.Experiment.model_shape sc ~keys in
       let p = sc.Workload.Scenario.params in
       ignore (Model.Predict.method_a p shape ~normalize_nodes:11);
       ignore
         (Model.Predict.method_b p shape
            ~group_levels:(Dispatch.Experiment.group_height sc ~keys)
            ~batch_keys:32768 ~normalize_nodes:11);
       ignore
         (Model.Predict.method_c3 p sc.Workload.Scenario.net ~slave_keys:32768
            ~n_masters:1 ~n_slaves:10))
  in
  let test_fig4 =
    Test.make ~name:"fig4/trend-model"
      (Staged.stage @@ fun () ->
       ignore (Dispatch.Experiment.fig4 ~years:5 bench_spec))
  in
  let test_serve =
    Test.make ~name:"serve/open-loop-B-C3"
      (Staged.stage @@ fun () -> ignore (Dispatch.Serve.run serve_spec))
  in
  Test.make_grouped ~name:"paper"
    [ test_table1; test_table2; test_fig3; test_table3; test_fig4;
      test_hier_point; test_serve ]

(* ------------------------------------------------------------------ *)
(* Bechamel plumbing *)

let benchmark tests =
  let ols =
    Analyze.ols ~bootstrap:0 ~r_square:true ~predictors:[| Measure.run |]
  in
  let instances = Instance.[ monotonic_clock ] in
  let cfg =
    Benchmark.cfg ~limit:200 ~quota:(Time.second 1.0) ~kde:None
      ~stabilize:false ()
  in
  let raw = Benchmark.all cfg instances tests in
  let results = Analyze.all ols Instance.monotonic_clock raw in
  Hashtbl.fold (fun name ols acc -> (name, ols) :: acc) results []
  |> List.sort compare

let print_results results =
  let tbl =
    Report.Table.create ~headers:[ "benchmark"; "time/run"; "r^2" ]
  in
  List.iter
    (fun (name, ols) ->
      let time =
        match Analyze.OLS.estimates ols with
        | Some (t :: _) -> Simcore.Simtime.to_string t
        | _ -> "n/a"
      in
      let r2 =
        match Analyze.OLS.r_square ols with
        | Some r -> Printf.sprintf "%.4f" r
        | None -> "n/a"
      in
      Report.Table.add_row tbl [ name; time; r2 ])
    results;
  print_string (Report.Table.render tbl)

(* ------------------------------------------------------------------ *)
(* Paper-shaped output at bench scale *)

let print_paper_shapes ~jobs ~faults ~metrics_path ~trace_path ~timeline
    ~timeline_window =
  let keys, _ = Lazy.force workload in
  ignore keys;
  print_endline "\n===== paper artefacts at bench scale =====\n";
  print_endline "--- Table 1 ---";
  print_string
    (Report.Table.render (Dispatch.Experiment.table1 bench_spec));
  print_endline "\n--- Table 2 ---";
  print_string
    (Report.Table.render (Dispatch.Experiment.table2 bench_spec));
  Printf.printf "\n--- Figure 3 (reduced sweep, %d worker domain%s) ---\n"
    jobs (if jobs = 1 then "" else "s");
  let sweep_sc = Workload.Scenario.with_queries (1 lsl 17) bench_scenario in
  let spec =
    Dispatch.Experiment.Spec.default
    |> Dispatch.Experiment.Spec.with_scenario sweep_sc
    |> Dispatch.Experiment.Spec.with_batches
         [ 8 * 1024; 32 * 1024; 128 * 1024; 512 * 1024 ]
    |> Dispatch.Experiment.Spec.with_jobs jobs
    |> (match metrics_path with
       | Some p -> Dispatch.Experiment.Spec.with_metrics p
       | None -> Fun.id)
    |> (match trace_path with
       | Some p -> Dispatch.Experiment.Spec.with_trace p
       | None -> Fun.id)
    |> Dispatch.Experiment.Spec.with_faults faults
  in
  let rows = Dispatch.Experiment.fig3 spec in
  print_string (Dispatch.Experiment.render_fig3 ~scenario:sweep_sc rows);
  let runs =
    List.concat_map
      (fun { Dispatch.Experiment.results; _ } ->
        List.map (fun r -> (Dispatch.Telemetry.run_label r, r)) results)
      rows
  in
  Dispatch.Experiment.emit_telemetry ~spec ~generator:"bench fig3" runs;
  List.iter
    (fun p -> Printf.printf "\nwrote %s\n" p)
    (List.filter_map Fun.id [ metrics_path; trace_path ]);
  print_endline "\n--- Table 3 ---";
  let t3_sc = Workload.Scenario.with_queries (1 lsl 18) bench_scenario in
  let t3_spec =
    Dispatch.Experiment.Spec.default
    |> Dispatch.Experiment.Spec.with_scenario t3_sc
    |> Dispatch.Experiment.Spec.with_jobs jobs
  in
  print_string
    (Dispatch.Experiment.render_table3 ~scenario:t3_sc
       (Dispatch.Experiment.table3 t3_spec));
  print_endline "\n--- Figure 4 ---";
  print_string
    (Dispatch.Experiment.render_fig4 (Dispatch.Experiment.fig4 ~years:5 bench_spec));
  print_endline "\n--- Serving (open loop, bench scale) ---";
  let serve_spec =
    serve_spec
    |> Dispatch.Experiment.Spec.with_jobs jobs
    |> (match timeline with
       | Some b -> Dispatch.Experiment.Spec.with_timeline b
       | None -> Fun.id)
    |> (match timeline_window with
       | Some w -> Dispatch.Experiment.Spec.with_timeline_window w
       | None -> Fun.id)
  in
  let serve_reports = Dispatch.Serve.run serve_spec in
  print_string (Dispatch.Serve.render ~scenario:serve_scenario serve_reports);
  match timeline with
  | None -> ()
  | Some base ->
      let text = Dispatch.Serve.render_timeline serve_reports in
      if text <> "" then begin
        print_newline ();
        print_string text
      end;
      if base <> "-" then begin
        Out_channel.with_open_text (base ^ ".csv") (fun oc ->
            List.iter
              (fun line ->
                output_string oc line;
                output_char oc '\n')
              (Dispatch.Serve.timeline_csv_lines serve_reports));
        let named =
          List.filter_map
            (fun { Dispatch.Serve.run; _ } ->
              Option.map
                (fun t -> (Dispatch.Telemetry.run_label run, t))
                run.Dispatch.Run_result.timeline)
            serve_reports
        in
        Dispatch.Telemetry.write_json (base ^ ".json")
          (Dispatch.Telemetry.timeline_document ~generator:"bench serve"
             ~fields:
               (Dispatch.Telemetry.manifest_fields serve_scenario
                  ~methods:serve_spec.Dispatch.Experiment.Spec.methods
                  ~batches:serve_spec.Dispatch.Experiment.Spec.batches)
             named);
        Printf.printf "\nwrote %s.csv\nwrote %s.json\n" base base
      end

let run_benchmarks ~jobs ~faults ~metrics_path ~trace_path ~timeline
    ~timeline_window =
  print_endline "===== microbenchmarks (bechamel) =====";
  print_results (benchmark (micro_tests ~jobs));
  print_endline "\n===== paper-artefact benchmarks (bechamel) =====";
  print_results (benchmark (artefact_tests ()));
  print_paper_shapes ~jobs ~faults ~metrics_path ~trace_path ~timeline
    ~timeline_window

(* ------------------------------------------------------------------ *)
(* Entry point *)

open Cmdliner

let save_baseline_arg =
  let doc =
    "Run the baseline sweep (CI scenario, every method, 8 KB / 128 KB / \
     1 MB batches, plus the ci-serve open-loop serving cell) and save \
     its simulated costs to $(docv); commit the file to promote a new \
     baseline.  Skips the benchmarks."
  in
  Arg.(
    value
    & opt (some string) None
    & info [ "save-baseline" ] ~docv:"FILE" ~doc)

let check_baseline_arg =
  let doc =
    "Re-run the baseline sweep and compare bit-for-bit against the \
     committed $(docv); exits 1 on any drift.  Skips the benchmarks.  \
     Run via `dune build @bench-baseline` in CI."
  in
  Arg.(
    value
    & opt (some string) None
    & info [ "check-baseline" ] ~docv:"FILE" ~doc)

let throughput_arg =
  let doc =
    "Measure host wall-clock simulator throughput (simulated queries/sec \
     and engine events/sec, fig3 grid + ci-serve saturation scenario), \
     append a labelled sample to the trajectory artifact $(docv) \
     (created when missing) and print the trajectory with per-cell \
     speedups.  Skips the benchmarks."
  in
  Arg.(
    value & opt (some string) None & info [ "throughput" ] ~docv:"FILE" ~doc)

let throughput_label_arg =
  let doc = "Label for the sample appended by --throughput." in
  Arg.(
    value
    & opt string "measured"
    & info [ "throughput-label" ] ~docv:"LABEL" ~doc)

let throughput_smoke_arg =
  let doc =
    "Validate the committed throughput trajectory $(docv) (JSON schema), \
     run one reduced measurement per cell family and compare against the \
     trajectory's last sample.  The comparison is advisory: warnings \
     only, never a failing exit — wall-clock numbers flake on noisy \
     hosts.  Run via `dune build @bench-throughput` in CI."
  in
  Arg.(
    value
    & opt (some string) None
    & info [ "throughput-smoke" ] ~docv:"FILE" ~doc)

let run_throughput ~path ~label =
  let sample = Dispatch.Throughput.measure ~label () in
  ignore (Dispatch.Throughput.append ~path sample);
  (* Also append a reduced-scale companion under the smoke key
     namespace: it is what `--throughput-smoke` (the @bench-throughput
     alias) compares freshly measured smoke cells against, so promoting
     a trajectory entry re-baselines the CI advisory in the same
     commit. *)
  let smoke =
    Dispatch.Throughput.measure ~smoke:true ~label:(label ^ "-smoke") ()
  in
  let trajectory = Dispatch.Throughput.append ~path smoke in
  print_string (Dispatch.Throughput.render_trajectory trajectory);
  Printf.printf "wrote %s\n" path;
  0

let run_throughput_smoke ~path =
  match Dispatch.Throughput.load path with
  | Error e ->
      Printf.eprintf "bench: invalid throughput trajectory: %s\n" e;
      1
  | Ok trajectory ->
      Printf.printf "%s: schema OK, %d sample%s\n" path
        (List.length trajectory)
        (if List.length trajectory = 1 then "" else "s");
      let current = Dispatch.Throughput.measure ~smoke:true ~label:"smoke" () in
      print_string (Dispatch.Throughput.render_sample current);
      (* Compare against the most recent sample that has comparable
         (same-key) cells — normally the committed smoke sample. *)
      let comparable (s : Dispatch.Throughput.sample) =
        List.exists
          (fun (c : Dispatch.Throughput.cell) ->
            List.exists
              (fun (sc : Dispatch.Throughput.cell) -> sc.key = c.key)
              s.cells)
          current.cells
      in
      (match List.find_opt comparable (List.rev trajectory) with
      | None ->
          Printf.printf
            "advisory: no sample with comparable cells in trajectory\n"
      | Some reference ->
          let warnings = Dispatch.Throughput.advisory ~reference ~current in
          if warnings = [] then
            Printf.printf "advisory: OK vs %S (threshold %.0f%%)\n"
              reference.Dispatch.Throughput.label
              (100.0 *. Dispatch.Throughput.advisory_threshold)
          else List.iter print_endline warnings);
      0

let main jobs faults metrics_path trace_path timeline timeline_window save
    check throughput throughput_label throughput_smoke =
  match (save, check, throughput, throughput_smoke) with
  | Some _, Some _, _, _ ->
      prerr_endline
        "bench: --save-baseline and --check-baseline are mutually exclusive";
      2
  | _, _, Some _, Some _ ->
      prerr_endline
        "bench: --throughput and --throughput-smoke are mutually exclusive";
      2
  | _, _, Some path, None -> run_throughput ~path ~label:throughput_label
  | _, _, None, Some path -> run_throughput_smoke ~path
  | Some path, None, None, None ->
      (* The baseline covers the zero-fault path only (see BENCH_003.json
         note in EXPERIMENTS.md); --faults does not alter the gate. *)
      let spec = Dispatch.Baseline.default_spec ~jobs in
      Dispatch.Baseline.save ~path ~spec (Dispatch.Baseline.capture ~spec);
      Printf.printf "wrote %s\n" path;
      0
  | None, Some path, None, None ->
      let spec = Dispatch.Baseline.default_spec ~jobs in
      let drifts = Dispatch.Baseline.check ~path ~spec in
      print_endline (Dispatch.Baseline.render_drift drifts);
      if drifts = [] then 0 else 1
  | None, None, None, None ->
      run_benchmarks ~jobs ~faults ~metrics_path ~trace_path ~timeline
        ~timeline_window;
      0

let () =
  let info =
    Cmd.info "bench" ~version:"1.0.0"
      ~doc:
        "Benchmark harness for the index-over-CPU-caches reproduction: \
         Bechamel microbenchmarks, per-artefact timings, paper-shaped \
         output at bench scale, and the simulated-cost baseline gate."
  in
  let term =
    Term.(
      const main $ Cli.jobs_arg $ Cli.faults_arg $ Cli.metrics_arg
      $ Cli.trace_json_arg $ Cli.timeline_arg $ Cli.timeline_window_arg
      $ save_baseline_arg $ check_baseline_arg $ throughput_arg
      $ throughput_label_arg $ throughput_smoke_arg)
  in
  exit (Cmd.eval' (Cmd.v info term))
