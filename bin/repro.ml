(* Command-line driver that regenerates every table and figure of the
   paper, plus the ablation studies.  `repro --help` lists subcommands.

   All subcommands share one Spec-producing term: every flag below folds
   into a single Dispatch.Experiment.Spec.t, so adding a new flag is a
   matter of declaring its Arg and one line in [build]. *)

open Cmdliner
module Spec = Dispatch.Experiment.Spec

let kib n = n * 1024

(* ------------------------------------------------------------------ *)
(* Shared options: one term, one Spec *)

let scale_arg =
  let doc =
    "Workload scale: 'paper' (2^23 queries, as published), 'scaled' (2^21 \
     queries, same per-key results, default) or 'ci' (tiny smoke test)."
  in
  Arg.(value & opt string "scaled" & info [ "scale" ] ~docv:"SCALE" ~doc)

let queries_arg =
  let doc = "Override the number of search keys (queries)." in
  Arg.(value & opt (some int) None & info [ "queries" ] ~docv:"N" ~doc)

let keys_arg =
  let doc = "Override the number of indexed keys." in
  Arg.(value & opt (some int) None & info [ "keys" ] ~docv:"N" ~doc)

let nodes_arg =
  let doc = "Override the cluster size (including the master)." in
  Arg.(value & opt (some int) None & info [ "nodes" ] ~docv:"N" ~doc)

let batch_arg =
  let doc = "Override the batch/message size in KB." in
  Arg.(value & opt (some int) None & info [ "batch" ] ~docv:"KB" ~doc)

let masters_arg =
  let doc = "Number of master nodes for Method C (paper: 1)." in
  Arg.(value & opt (some int) None & info [ "masters" ] ~docv:"N" ~doc)

let network_arg =
  let doc = "Network profile: myrinet | gige | fast-ethernet." in
  Arg.(value & opt string "myrinet" & info [ "network" ] ~docv:"NET" ~doc)

let seed_arg =
  let doc = "Workload seed." in
  Arg.(value & opt (some int) None & info [ "seed" ] ~docv:"SEED" ~doc)

let jobs_arg =
  let doc =
    "Worker domains for simulation sweeps (default: available cores minus \
     one, at least 1).  Results are byte-identical at any value."
  in
  Arg.(
    value
    & opt int (Exec.Sweep.default_jobs ())
    & info [ "jobs"; "j" ] ~docv:"N" ~doc)

let methods_arg =
  let doc = "Comma-separated methods to run (A,B,C-1,C-2,C-3)." in
  let parse s =
    let parts = String.split_on_char ',' s in
    let rec go acc = function
      | [] -> Ok (List.rev acc)
      | p :: rest -> (
          match Dispatch.Methods.of_string (String.trim p) with
          | Some m -> go (m :: acc) rest
          | None -> Error (`Msg (Printf.sprintf "unknown method %S" p)))
    in
    go [] parts
  in
  let print fmt ms =
    Format.pp_print_string fmt
      (String.concat "," (List.map Dispatch.Methods.to_string ms))
  in
  Arg.(
    value
    & opt (conv (parse, print)) []
    & info [ "methods" ] ~docv:"METHODS" ~doc)

let csv_arg =
  let doc = "Also write raw results to $(docv)." in
  Arg.(value & opt (some string) None & info [ "csv" ] ~docv:"FILE" ~doc)

let metrics_arg =
  let doc =
    "Write a metrics JSON file: a run manifest (seed, scenario, methods, \
     network, git revision, schema version) followed by every run's \
     telemetry snapshot — cache, network, engine and response-time \
     series.  Deterministic at any --jobs value; set SOURCE_DATE_EPOCH \
     for byte-reproducible output."
  in
  Arg.(value & opt (some string) None & info [ "metrics" ] ~docv:"FILE" ~doc)

let trace_json_arg =
  let doc =
    "Record event traces (per-node busy spans, message sends, in-flight \
     counters) and write them as Chrome trace_event JSON, loadable at \
     ui.perfetto.dev or chrome://tracing."
  in
  Arg.(
    value & opt (some string) None & info [ "trace-json" ] ~docv:"FILE" ~doc)

(* Apply an optional override; absent flags leave the value untouched. *)
let override v f x = match v with Some v -> f v x | None -> x

let spec_term =
  let build scale queries keys nodes masters batch network seed jobs methods
      metrics trace_json =
    let base =
      match String.lowercase_ascii scale with
      | "paper" -> Ok Workload.Scenario.paper
      | "scaled" -> Ok Workload.Scenario.scaled
      | "ci" -> Ok Workload.Scenario.ci
      | other -> Error (`Msg (Printf.sprintf "unknown scale %S" other))
    in
    let net =
      match String.lowercase_ascii network with
      | "myrinet" -> Ok Netsim.Profile.myrinet
      | "gige" | "gigabit" | "gigabit-ethernet" -> Ok Netsim.Profile.gigabit_ethernet
      | "fast-ethernet" | "ethernet" -> Ok Netsim.Profile.fast_ethernet
      | other -> Error (`Msg (Printf.sprintf "unknown network %S" other))
    in
    match (base, net) with
    | Error e, _ | _, Error e -> Error e
    | Ok sc, Ok net ->
        let sc =
          { sc with Workload.Scenario.net }
          |> override queries (fun q sc -> { sc with Workload.Scenario.n_queries = q })
          |> override keys (fun k sc -> { sc with Workload.Scenario.n_keys = k })
          |> override nodes (fun n sc -> { sc with Workload.Scenario.n_nodes = n })
          |> override masters (fun m sc -> { sc with Workload.Scenario.n_masters = m })
          |> override batch (fun b sc -> Workload.Scenario.with_batch sc (kib b))
        in
        Ok
          (Spec.default
          |> Spec.with_scenario sc
          |> Spec.with_jobs jobs
          |> (match methods with [] -> Fun.id | ms -> Spec.with_methods ms)
          |> override seed Spec.with_seed
          |> override metrics Spec.with_metrics
          |> override trace_json Spec.with_trace)
  in
  Term.(
    term_result ~usage:true
      (const build $ scale_arg $ queries_arg $ keys_arg $ nodes_arg
     $ masters_arg $ batch_arg $ network_arg $ seed_arg $ jobs_arg
     $ methods_arg $ metrics_arg $ trace_json_arg))

let say fmt = Format.printf (fmt ^^ "@.")

(* Output files are written before this check, so a failed validation
   still leaves the evidence on disk. *)
let check_validation runs =
  let bad =
    List.filter (fun (_, r) -> r.Dispatch.Run_result.validation_errors > 0) runs
  in
  if bad <> [] then begin
    List.iter
      (fun (label, r) ->
        Printf.eprintf "repro: ERROR: %d validation error%s in run %s\n"
          r.Dispatch.Run_result.validation_errors
          (if r.Dispatch.Run_result.validation_errors = 1 then "" else "s")
          label)
      bad;
    Printf.eprintf
      "repro: simulated results disagree with the reference oracle; output \
       above is not trustworthy\n";
    exit 3
  end

let labelled runs =
  List.map (fun r -> (Dispatch.Telemetry.run_label r, r)) runs

(* ------------------------------------------------------------------ *)
(* Subcommands *)

let run_table1 spec =
  say "%a@\n" Workload.Scenario.pp (Spec.scenario spec);
  say "Table 1: the index structure setup@\n@\n%s"
    (Report.Table.render (Dispatch.Experiment.table1 ~spec ()))

let run_table2 spec =
  say "Table 2: parameters measured on the simulated cluster@\n@\n%s"
    (Report.Table.render (Dispatch.Experiment.table2 ~spec ()))

let run_table3 spec =
  let sc = Spec.scenario spec in
  say "%a@\n" Workload.Scenario.pp sc;
  let rows = Dispatch.Experiment.table3 ~spec () in
  print_string (Dispatch.Experiment.render_table3 ~scenario:sc rows);
  let runs =
    labelled (List.map (fun r -> r.Dispatch.Experiment.run) rows)
  in
  Dispatch.Experiment.emit_telemetry ~spec ~generator:"repro table3" runs;
  check_validation runs

let run_fig3 spec csv =
  let sc = Spec.scenario spec in
  say "%a@\n" Workload.Scenario.pp sc;
  let rows = Dispatch.Experiment.fig3 ~spec () in
  print_string (Dispatch.Experiment.render_fig3 ~scenario:sc rows);
  (match csv with
  | None -> ()
  | Some path ->
      let flat =
        List.concat_map
          (fun { Dispatch.Experiment.results; _ } ->
            List.map Dispatch.Run_result.to_cells results)
          rows
      in
      Report.Csv.save ~path ~header:Dispatch.Run_result.header flat;
      say "wrote %s" path);
  let runs =
    labelled
      (List.concat_map
         (fun { Dispatch.Experiment.results; _ } -> results)
         rows)
  in
  Dispatch.Experiment.emit_telemetry ~spec ~generator:"repro fig3" runs;
  check_validation runs

let run_fig4 spec years =
  say "%a@\n" Workload.Scenario.pp (Spec.scenario spec);
  print_string
    (Dispatch.Experiment.render_fig4 (Dispatch.Experiment.fig4 ~spec ~years ()))

let run_ablation spec which =
  let table =
    match String.lowercase_ascii which with
    | "batch-overhead" -> Ok (Dispatch.Ablation.batch_overhead ~spec ())
    | "network" -> Ok (Dispatch.Ablation.network ~spec ())
    | "skew" -> Ok (Dispatch.Ablation.skew ~spec ())
    | "masters" -> Ok (Dispatch.Ablation.masters ~spec ())
    | "linesize" | "line-size" -> Ok (Dispatch.Ablation.line_size ~spec ())
    | "slave-structure" -> Ok (Dispatch.Ablation.slave_structure ~spec ())
    | "structures" -> Ok (Dispatch.Ablation.structures ~spec ())
    | "hierarchy" -> Ok (Dispatch.Ablation.hierarchy ~spec ())
    | other -> Error other
  in
  match table with
  | Ok t ->
      say "%a@\n" Workload.Scenario.pp (Spec.scenario spec);
      say "ablation %s:@\n@\n%s" which (Report.Table.render t);
      `Ok ()
  | Error other ->
      `Error
        ( false,
          Printf.sprintf
            "unknown ablation %S (batch-overhead | network | skew | masters \
             | linesize | slave-structure | structures | hierarchy)"
            other )

let run_timeline spec =
  (* C-3 unless --methods narrows the set; the timeline traces one run. *)
  let method_id =
    match spec.Spec.methods with
    | m :: _ when spec.Spec.methods <> Dispatch.Methods.all -> m
    | _ -> Dispatch.Methods.C3
  in
  say "%a@\n" Workload.Scenario.pp (Spec.scenario spec);
  let rendered, r = Dispatch.Experiment.timeline_traced ~spec ~method_id () in
  print_string rendered;
  let runs = labelled [ r ] in
  Dispatch.Experiment.emit_telemetry ~spec ~generator:"repro timeline" runs;
  check_validation runs

let run_all spec =
  run_table1 spec;
  run_table2 spec;
  run_fig3 spec None;
  run_table3 spec;
  run_fig4 spec 5

(* ------------------------------------------------------------------ *)
(* Command wiring *)

let cmd_of name doc f =
  Cmd.v (Cmd.info name ~doc) Term.(const f $ spec_term)

let table1_cmd = cmd_of "table1" "Reproduce Table 1 (index structure setup)." run_table1
let table2_cmd = cmd_of "table2" "Reproduce Table 2 (measured machine parameters)." run_table2
let table3_cmd = cmd_of "table3" "Reproduce Table 3 (model vs simulation)." run_table3

let fig3_cmd =
  Cmd.v
    (Cmd.info "fig3" ~doc:"Reproduce Figure 3 (search time vs batch size).")
    Term.(const run_fig3 $ spec_term $ csv_arg)

let fig4_cmd =
  let years =
    Arg.(value & opt int 5 & info [ "years" ] ~docv:"YEARS" ~doc:"Horizon in years.")
  in
  Cmd.v
    (Cmd.info "fig4" ~doc:"Reproduce Figure 4 (future technology trends).")
    Term.(const run_fig4 $ spec_term $ years)

let ablation_cmd =
  let which =
    Arg.(
      required
      & pos 0 (some string) None
      & info [] ~docv:"NAME"
          ~doc:
            "One of: batch-overhead, network, skew, masters, linesize, \
             slave-structure, structures, hierarchy.")
  in
  Cmd.v
    (Cmd.info "ablation" ~doc:"Run an ablation study.")
    Term.(ret (const run_ablation $ spec_term $ which))

let timeline_cmd =
  Cmd.v
    (Cmd.info "timeline"
       ~doc:"Gantt chart of per-node busy time for one method (default C-3).")
    Term.(const run_timeline $ spec_term)

let all_cmd = cmd_of "all" "Run every table and figure in sequence." run_all

let () =
  let info =
    Cmd.info "repro" ~version:"1.0.0"
      ~doc:
        "Reproduction of 'Fast Query Processing by Distributing an Index \
         over CPU Caches' (Ma & Cooperman, CLUSTER 2005) on a simulated \
         cluster."
  in
  let group =
    Cmd.group info
      [ table1_cmd; table2_cmd; table3_cmd; fig3_cmd; fig4_cmd; ablation_cmd;
        timeline_cmd; all_cmd ]
  in
  exit (Cmd.eval group)
