(* Command-line driver that regenerates every table and figure of the
   paper, plus the ablation studies.  `repro --help` lists subcommands.

   All subcommands share one Spec-producing term ({!Cli.spec_term},
   shared with the bench harness): every flag folds into a single
   Dispatch.Experiment.Spec.t, so adding a new flag is a matter of
   declaring its Arg in [Cli] and one line in its [build]. *)

open Cmdliner
module Spec = Dispatch.Experiment.Spec

let spec_term = Cli.spec_term
let csv_arg = Cli.csv_arg
let say fmt = Format.printf (fmt ^^ "@.")

(* Output files are written before this check, so a failed validation
   still leaves the evidence on disk. *)
let check_validation runs =
  let bad =
    List.filter (fun (_, r) -> r.Dispatch.Run_result.validation_errors > 0) runs
  in
  if bad <> [] then begin
    List.iter
      (fun (label, r) ->
        Printf.eprintf "repro: ERROR: %d validation error%s in run %s\n"
          r.Dispatch.Run_result.validation_errors
          (if r.Dispatch.Run_result.validation_errors = 1 then "" else "s")
          label)
      bad;
    Printf.eprintf
      "repro: simulated results disagree with the reference oracle; output \
       above is not trustworthy\n";
    exit 3
  end

let labelled runs =
  List.map (fun r -> (Dispatch.Telemetry.run_label r, r)) runs

(* One line per degraded run: the table renderers keep the paper's
   column layout, so failover accounting goes to its own summary. *)
let print_degraded runs =
  List.iter
    (fun (label, r) ->
      let d = r.Dispatch.Run_result.degraded in
      if Dispatch.Run_result.is_degraded d then
        say
          "degraded %s: retries=%d redispatches=%d fallback=%d lost=%d \
           dead=[%s] completeness=%.6f"
          label d.Dispatch.Run_result.retries d.Dispatch.Run_result.redispatches
          d.Dispatch.Run_result.fallback_lookups
          d.Dispatch.Run_result.lost_queries
          (String.concat ","
             (List.map string_of_int d.Dispatch.Run_result.dead_nodes))
          (Dispatch.Run_result.completeness r))
    runs

(* The cost trees go to stdout with the artefact when --profile was
   given; --profile-folded output is handled by [emit_telemetry]. *)
let print_profiles spec runs =
  if spec.Spec.profile then begin
    print_newline ();
    print_string (Dispatch.Experiment.profile_report runs)
  end

(* Cache-microscope report to stdout; the BASE.csv / BASE.json exports
   are written by [emit_telemetry], so call this after it. *)
let print_scope spec runs =
  match spec.Spec.cache_scope with
  | None -> ()
  | Some base ->
      let scoped =
        List.filter_map
          (fun (label, r) ->
            Option.map (fun sc -> (label, sc)) r.Dispatch.Run_result.scope)
          runs
      in
      let text = Dispatch.Scope_report.render scoped in
      if text <> "" then begin
        print_newline ();
        print_string text
      end;
      if base <> "-" && scoped <> [] then begin
        say "wrote %s.csv" base;
        say "wrote %s.json" base
      end

(* ------------------------------------------------------------------ *)
(* Subcommands *)

let run_table1 spec =
  say "%a@\n" Workload.Scenario.pp (Spec.scenario spec);
  say "Table 1: the index structure setup@\n@\n%s"
    (Report.Table.render (Dispatch.Experiment.table1 spec))

let run_table2 spec =
  say "Table 2: parameters measured on the simulated cluster@\n@\n%s"
    (Report.Table.render (Dispatch.Experiment.table2 spec))

let run_table3 spec =
  let sc = Spec.scenario spec in
  say "%a@\n" Workload.Scenario.pp sc;
  let rows = Dispatch.Experiment.table3 spec in
  print_string (Dispatch.Experiment.render_table3 ~scenario:sc rows);
  let runs =
    labelled (List.map (fun r -> r.Dispatch.Experiment.run) rows)
  in
  print_degraded runs;
  print_profiles spec runs;
  Dispatch.Experiment.emit_telemetry ~spec ~generator:"repro table3" runs;
  print_scope spec runs;
  check_validation runs

let run_fig3 spec csv =
  let sc = Spec.scenario spec in
  say "%a@\n" Workload.Scenario.pp sc;
  let rows = Dispatch.Experiment.fig3 spec in
  print_string (Dispatch.Experiment.render_fig3 ~scenario:sc rows);
  (match csv with
  | None -> ()
  | Some path ->
      (* Degraded columns appear only under --faults, so fault-free CSV
         output stays byte-identical to pre-fault builds. *)
      let faulted = Spec.faulted spec in
      let cells r =
        if faulted then
          Dispatch.Run_result.to_cells r @ Dispatch.Run_result.degraded_cells r
        else Dispatch.Run_result.to_cells r
      in
      let header =
        if faulted then
          Dispatch.Run_result.header @ Dispatch.Run_result.degraded_header
        else Dispatch.Run_result.header
      in
      let flat =
        List.concat_map
          (fun { Dispatch.Experiment.results; _ } -> List.map cells results)
          rows
      in
      Report.Csv.save ~path ~header flat;
      say "wrote %s" path);
  let runs =
    labelled
      (List.concat_map
         (fun { Dispatch.Experiment.results; _ } -> results)
         rows)
  in
  print_degraded runs;
  print_profiles spec runs;
  Dispatch.Experiment.emit_telemetry ~spec ~generator:"repro fig3" runs;
  print_scope spec runs;
  check_validation runs

let run_fig4 spec years =
  say "%a@\n" Workload.Scenario.pp (Spec.scenario spec);
  print_string
    (Dispatch.Experiment.render_fig4 (Dispatch.Experiment.fig4 ~years spec))

(* The dynamic-index study exports per-cell results (base columns plus
   dyn.* update accounting) — it gets the full run treatment the other
   ablation tables don't need. *)
let run_ablation_updates spec csv =
  let sc = Spec.scenario spec in
  say "%a@\n" Workload.Scenario.pp sc;
  let tbl, rows = Dispatch.Ablation.updates spec in
  say "ablation updates:@\n@\n%s" (Report.Table.render tbl);
  let faulted = Spec.faulted spec in
  (match csv with
  | None -> ()
  | Some path ->
      let header =
        ("updates" :: Dispatch.Run_result.header)
        @ Dispatch.Dynamic.stats_header
        @ (if faulted then Dispatch.Run_result.degraded_header else [])
      in
      let cells (u, r, st) =
        (Workload.Mutation.to_string u :: Dispatch.Run_result.to_cells r)
        @ Dispatch.Dynamic.stats_cells st
        @
        if faulted then Dispatch.Run_result.degraded_cells r else []
      in
      Report.Csv.save ~path ~header (List.map cells rows);
      say "wrote %s" path);
  let runs =
    List.map
      (fun (u, r, _) ->
        ( Printf.sprintf "u=%g %s" u.Workload.Mutation.ratio
            (Dispatch.Telemetry.run_label r),
          r ))
      rows
  in
  print_degraded runs;
  print_profiles spec runs;
  Dispatch.Experiment.emit_telemetry ~spec ~generator:"repro ablation updates"
    runs;
  print_scope spec runs;
  check_validation runs

let run_ablation spec which csv =
  if String.lowercase_ascii which = "updates" then begin
    run_ablation_updates spec csv;
    `Ok ()
  end
  else
  let table =
    match String.lowercase_ascii which with
    | "batch-overhead" -> Ok (Dispatch.Ablation.batch_overhead spec)
    | "network" -> Ok (Dispatch.Ablation.network spec)
    | "skew" -> Ok (Dispatch.Ablation.skew spec)
    | "masters" -> Ok (Dispatch.Ablation.masters spec)
    | "linesize" | "line-size" -> Ok (Dispatch.Ablation.line_size spec)
    | "slave-structure" -> Ok (Dispatch.Ablation.slave_structure spec)
    | "structures" -> Ok (Dispatch.Ablation.structures spec)
    | "hierarchy" -> Ok (Dispatch.Ablation.hierarchy spec)
    | other -> Error other
  in
  match table with
  | Ok t ->
      say "%a@\n" Workload.Scenario.pp (Spec.scenario spec);
      say "ablation %s:@\n@\n%s" which (Report.Table.render t);
      `Ok ()
  | Error other ->
      `Error
        ( false,
          Printf.sprintf
            "unknown ablation %S (batch-overhead | network | skew | masters \
             | linesize | slave-structure | structures | hierarchy | updates)"
            other )

let run_timeline spec =
  (* C-3 unless --methods narrows the set; the timeline traces one run. *)
  let method_id =
    match spec.Spec.methods with
    | m :: _ when spec.Spec.methods <> Dispatch.Methods.all -> m
    | _ -> Dispatch.Methods.C3
  in
  say "%a@\n" Workload.Scenario.pp (Spec.scenario spec);
  let rendered, r = Dispatch.Experiment.timeline_traced ~method_id spec in
  print_string rendered;
  let runs = labelled [ r ] in
  print_degraded runs;
  print_profiles spec runs;
  Dispatch.Experiment.emit_telemetry ~spec ~generator:"repro timeline" runs;
  print_scope spec runs;
  check_validation runs

(* Open-loop serving with SLO accounting.  One run per method at the
   spec's offered load, or a load sweep when --loads is given. *)
let run_serve spec csv loads =
  let sc = Spec.scenario spec in
  say "%a@\n" Workload.Scenario.pp sc;
  let reports =
    match loads with
    | [] -> Dispatch.Serve.run spec
    | loads -> Dispatch.Serve.load_sweep spec ~loads
  in
  print_string (Dispatch.Serve.render ~scenario:sc reports);
  (match csv with
  | None -> ()
  | Some path ->
      Report.Csv.save ~path ~header:Dispatch.Run_result.serving_header
        (List.map
           (fun { Dispatch.Serve.run; serving } ->
             Dispatch.Run_result.serving_cells run serving)
           reports);
      say "wrote %s" path);
  (match spec.Spec.timeline with
  | None -> ()
  | Some base ->
      let text = Dispatch.Serve.render_timeline reports in
      if text <> "" then begin
        print_newline ();
        print_string text
      end;
      if base <> "-" then begin
        Out_channel.with_open_text (base ^ ".csv") (fun oc ->
            List.iter
              (fun line ->
                output_string oc line;
                output_char oc '\n')
              (Dispatch.Serve.timeline_csv_lines reports));
        say "wrote %s.csv" base;
        let named =
          List.filter_map
            (fun { Dispatch.Serve.run; _ } ->
              Option.map
                (fun t -> (Dispatch.Telemetry.run_label run, t))
                run.Dispatch.Run_result.timeline)
            reports
        in
        Dispatch.Telemetry.write_json (base ^ ".json")
          (Dispatch.Telemetry.timeline_document ~generator:"repro serve"
             ~fields:
               (Dispatch.Telemetry.manifest_fields ~faults:spec.Spec.faults sc
                  ~methods:spec.Spec.methods ~batches:spec.Spec.batches)
             named);
        say "wrote %s.json" base
      end);
  let runs =
    labelled (List.map (fun r -> r.Dispatch.Serve.run) reports)
  in
  print_degraded runs;
  print_profiles spec runs;
  Dispatch.Experiment.emit_telemetry ~spec ~generator:"repro serve" runs;
  print_scope spec runs;
  check_validation runs

let run_all spec =
  run_table1 spec;
  run_table2 spec;
  run_fig3 spec None;
  run_table3 spec;
  run_fig4 spec 5

(* ------------------------------------------------------------------ *)
(* Command wiring *)

let cmd_of name doc f =
  Cmd.v (Cmd.info name ~doc) Term.(const f $ spec_term)

let table1_cmd = cmd_of "table1" "Reproduce Table 1 (index structure setup)." run_table1
let table2_cmd = cmd_of "table2" "Reproduce Table 2 (measured machine parameters)." run_table2
let table3_cmd = cmd_of "table3" "Reproduce Table 3 (model vs simulation)." run_table3

let fig3_cmd =
  Cmd.v
    (Cmd.info "fig3" ~doc:"Reproduce Figure 3 (search time vs batch size).")
    Term.(const run_fig3 $ spec_term $ csv_arg)

let fig4_cmd =
  let years =
    Arg.(value & opt int 5 & info [ "years" ] ~docv:"YEARS" ~doc:"Horizon in years.")
  in
  Cmd.v
    (Cmd.info "fig4" ~doc:"Reproduce Figure 4 (future technology trends).")
    Term.(const run_fig4 $ spec_term $ years)

let ablation_cmd =
  let which =
    Arg.(
      required
      & pos 0 (some string) None
      & info [] ~docv:"NAME"
          ~doc:
            "One of: batch-overhead, network, skew, masters, linesize, \
             slave-structure, structures, hierarchy, updates.")
  in
  Cmd.v
    (Cmd.info "ablation" ~doc:"Run an ablation study.")
    Term.(ret (const run_ablation $ spec_term $ which $ csv_arg))

let timeline_cmd =
  Cmd.v
    (Cmd.info "timeline"
       ~doc:"Gantt chart of per-node busy time for one method (default C-3).")
    Term.(const run_timeline $ spec_term)

let serve_cmd =
  let loads =
    let doc =
      "Comma-separated offered loads (queries per second) to sweep; each \
       rescales the arrival process.  Without it, one run per method at \
       the spec's own load."
    in
    Arg.(
      value
      & opt (list ~sep:',' float) []
      & info [ "loads" ] ~docv:"QPS,..." ~doc)
  in
  Cmd.v
    (Cmd.info "serve"
       ~doc:
         "Online serving: open-loop arrivals (--arrival, --offered-load, \
          --duration, --clients) through each method with SLO accounting \
          (--slo).")
    Term.(const run_serve $ spec_term $ csv_arg $ loads)

let all_cmd = cmd_of "all" "Run every table and figure in sequence." run_all

let () =
  let info =
    Cmd.info "repro" ~version:"1.0.0"
      ~doc:
        "Reproduction of 'Fast Query Processing by Distributing an Index \
         over CPU Caches' (Ma & Cooperman, CLUSTER 2005) on a simulated \
         cluster."
  in
  let group =
    Cmd.group info
      [ table1_cmd; table2_cmd; table3_cmd; fig3_cmd; fig4_cmd; ablation_cmd;
        timeline_cmd; serve_cmd; all_cmd ]
  in
  exit (Cmd.eval group)
